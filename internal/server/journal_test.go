package server

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// randRecord builds one arbitrary-but-valid journal record.
func randRecord(rng *rand.Rand) *record {
	kinds := []string{"seq", "submit", "state", "cancel"}
	rec := &record{Kind: kinds[rng.Intn(len(kinds))]}
	switch rec.Kind {
	case "seq":
		rec.Seq = rng.Intn(1 << 20)
	case "submit":
		rec.Seq = rng.Intn(1 << 20)
		rec.ID = "j" + string(rune('a'+rng.Intn(26)))
		rec.Spec = &JobSpec{
			D: 2 + rng.Intn(2), N: 1 + rng.Intn(5000), Iters: 1 + rng.Intn(100000),
			Mode: []string{"serial", "openmp", "mpi"}[rng.Intn(3)],
			Seed: rng.Int63(), Vel: rng.Float64() * 8,
			Checkpoint: "/tmp/ck" + string(rune('0'+rng.Intn(10))),
			NoReorder:  rng.Intn(2) == 0, MaxRestarts: rng.Intn(5) - 1,
			DeadlineMs: int64(rng.Intn(10000)),
		}
	case "state":
		rec.ID = "j1"
		rec.State = []string{"queued", "running", "done", "canceled", "failed"}[rng.Intn(5)]
		rec.Error = "fault: " + string(rune('a'+rng.Intn(26)))
		rec.Restarts = rng.Intn(4)
		rec.Iters = rng.Intn(100000)
		rec.Recovered = rng.Intn(2) == 0
	case "cancel":
		rec.ID = "j2"
	}
	return rec
}

// TestJournalRecordRoundTrip is the framing property test: any
// sequence of records encodes and decodes back to itself exactly.
func TestJournalRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(20)
		recs := make([]*record, n)
		buf := append([]byte(nil), journalMagic[:]...)
		var err error
		for i := range recs {
			recs[i] = randRecord(rng)
			if buf, err = appendRecord(buf, recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		got := decodeRecords(buf)
		if len(got) != n {
			t.Fatalf("trial %d: decoded %d records, want %d", trial, len(got), n)
		}
		for i := range recs {
			if !reflect.DeepEqual(&got[i], recs[i]) {
				t.Fatalf("trial %d record %d: %+v != %+v", trial, i, got[i], *recs[i])
			}
		}
	}
}

// TestJournalTornTail: truncating an encoded journal at every possible
// byte offset must decode to a prefix of the original records — the
// torn tail is dropped, never fatal, and never yields a record that
// was not written.
func TestJournalTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]*record, 6)
	buf := append([]byte(nil), journalMagic[:]...)
	var err error
	for i := range recs {
		recs[i] = randRecord(rng)
		if buf, err = appendRecord(buf, recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	full := decodeRecords(buf)
	if len(full) != len(recs) {
		t.Fatalf("intact journal decoded %d records, want %d", len(full), len(recs))
	}
	for cut := 0; cut <= len(buf); cut++ {
		got := decodeRecords(buf[:cut])
		if len(got) > len(recs) {
			t.Fatalf("cut %d: decoded %d records from a %d-record journal", cut, len(got), len(recs))
		}
		for i := range got {
			if !reflect.DeepEqual(&got[i], recs[i]) {
				t.Fatalf("cut %d: record %d is not a prefix match", cut, i)
			}
		}
	}
}

// TestJournalBitFlip: flipping any single bit loses at most the
// records from the damaged frame onward — the checksum catches the
// corruption — and decoding still never panics.
func TestJournalBitFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	recs := make([]*record, 4)
	buf := append([]byte(nil), journalMagic[:]...)
	var err error
	for i := range recs {
		recs[i] = randRecord(rng)
		if buf, err = appendRecord(buf, recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		pos := rng.Intn(len(buf))
		bit := byte(1) << rng.Intn(8)
		mut := append([]byte(nil), buf...)
		mut[pos] ^= bit
		got := decodeRecords(mut)
		// Whatever survives must be a prefix of the original sequence:
		// a flipped length/checksum/payload ends the parse, it cannot
		// invent trailing records. (A flip inside a JSON payload that
		// still checksums is impossible — FNV covers the payload.)
		if len(got) > len(recs) {
			t.Fatalf("trial %d: bit flip at %d grew the journal to %d records", trial, pos, len(got))
		}
		for i := range got {
			if !reflect.DeepEqual(&got[i], recs[i]) {
				t.Fatalf("trial %d: bit flip at %d corrupted decoded record %d without failing the checksum", trial, pos, i)
			}
		}
	}
}

// TestJournalReplayMissingFile: first boot — no journal — is an empty
// record set, not an error.
func TestJournalReplayMissingFile(t *testing.T) {
	if recs := replayJournal(filepath.Join(t.TempDir(), "nope.wal")); recs != nil {
		t.Fatalf("missing journal replayed %d records", len(recs))
	}
}

// TestJournalCompactionRoundTrip: createJournal writes exactly the
// compacted records, and subsequent appends land after them durably.
func TestJournalCompactionRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	spec := &JobSpec{N: 100, Iters: 50}
	j, err := createJournal(path, []*record{
		{Kind: "seq", Seq: 7},
		{Kind: "submit", Seq: 3, ID: "j3", Spec: spec},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(&record{Kind: "state", ID: "j3", State: "running"}); err != nil {
		t.Fatal(err)
	}
	j.close()
	recs := replayJournal(path)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	if recs[0].Kind != "seq" || recs[0].Seq != 7 ||
		recs[1].Kind != "submit" || recs[1].Spec == nil || recs[1].Spec.N != 100 ||
		recs[2].Kind != "state" || recs[2].State != "running" {
		t.Fatalf("replayed %+v", recs)
	}

	// Recompacting over an existing journal replaces it atomically.
	j2, err := createJournal(path, []*record{{Kind: "seq", Seq: 9}})
	if err != nil {
		t.Fatal(err)
	}
	j2.close()
	if recs := replayJournal(path); len(recs) != 1 || recs[0].Seq != 9 {
		t.Fatalf("recompacted journal replayed %+v", recs)
	}
}

// TestJournalFrozenAppendsDropped: freeze (the crash-simulation hook)
// makes every subsequent append a silent no-op, so the on-disk journal
// stays exactly as it was at the freeze point.
func TestJournalFrozenAppendsDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, err := createJournal(path, []*record{{Kind: "seq", Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	j.freeze()
	if err := j.append(&record{Kind: "cancel", ID: "j1"}); err != nil {
		t.Fatalf("frozen append errored: %v", err)
	}
	j.close()
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("frozen journal changed on disk")
	}
}

// FuzzJournalReplay: recovery must never panic, whatever bytes the
// crash left in the journal — decode the longest valid prefix and
// rebuild a job table from it. Seeds cover an intact journal, torn
// tails, and header corruption; the fuzzer mutates from there.
func FuzzJournalReplay(f *testing.F) {
	buf := append([]byte(nil), journalMagic[:]...)
	var err error
	for _, rec := range []*record{
		{Kind: "seq", Seq: 4},
		{Kind: "submit", Seq: 1, ID: "j1", Spec: &JobSpec{N: 100, Iters: 50, Checkpoint: "/tmp/j1.ck"}},
		{Kind: "state", ID: "j1", State: "running", Iters: 20},
		{Kind: "submit", Seq: 2, ID: "j2", Spec: &JobSpec{N: 50, Iters: 10}},
		{Kind: "cancel", ID: "j2"},
		{Kind: "state", ID: "j1", State: "done", Iters: 50},
	} {
		if buf, err = appendRecord(buf, rec); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf)
	f.Add(buf[:len(buf)-5])
	f.Add(buf[:11])
	f.Add([]byte("HYDEMJL1"))
	f.Add([]byte("not a journal at all"))
	mut := append([]byte(nil), buf...)
	mut[40] ^= 0x10
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := decodeRecords(data)
		// Rebuilding from any decoded record soup must not panic either;
		// a bare server shell exercises exactly the startup path.
		s := &Server{jobs: make(map[string]*Job)}
		pending := s.rebuild(recs)
		for _, j := range pending {
			if j.state != StateQueued || !j.recovered {
				t.Fatalf("pending job %s in state %v (recovered=%v)", j.ID, j.state, j.recovered)
			}
		}
	})
}
