package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hybriddem/internal/checkpoint"
)

// The write-ahead job journal is what makes the demd lifecycle durable:
// every submit, state transition and cancel request is appended — and
// fsynced — before it is acknowledged, so a daemon that dies at any
// instant can replay the log and find every job it had accepted. The
// on-disk format reuses the checkpoint framing idiom (magic, length,
// FNV-1a) at record granularity:
//
//	[8] file magic "HYDEMJL1"
//	then, per record:
//	[8] payload length, big-endian
//	[8] FNV-1a over the payload, big-endian
//	[n] JSON-encoded record
//
// A torn tail — the header or payload of the last record cut short by
// the crash, or a record whose checksum fails — ends the replay at the
// last intact record; it is dropped, never fatal. On startup the
// surviving records are compacted into a fresh journal (one submit plus
// at most one state record per job), written with the same atomic
// temp/fsync/rename/dir-sync dance as checkpoint.SaveFile, so the log
// stays bounded by the job table instead of growing with every
// transition across restarts.
var journalMagic = [8]byte{'H', 'Y', 'D', 'E', 'M', 'J', 'L', '1'}

const (
	recHeaderLen = 16
	// maxRecLen bounds a record's length field so a corrupted header
	// cannot make replay attempt an absurd allocation. A record is one
	// JSON job spec plus bookkeeping; a megabyte is already generous.
	maxRecLen = 1 << 20
)

// record is one journal entry. Kind selects the verb; the other fields
// are per-verb payload.
//
//	"seq"    — Seq: high-water mark of issued job ids (compaction
//	           writes one so id monotonicity survives even if the
//	           highest job's submit record is ever lost)
//	"submit" — Seq, ID, Spec: a job was accepted
//	"state"  — ID, State, Error, Restarts, Iters, Recovered: a
//	           lifecycle transition was committed
//	"cancel" — ID: cancellation was requested (the intent is durable
//	           even if the boundary transition never lands)
type record struct {
	Kind      string   `json:"k"`
	Seq       int      `json:"seq,omitempty"`
	ID        string   `json:"id,omitempty"`
	Spec      *JobSpec `json:"spec,omitempty"`
	State     string   `json:"state,omitempty"`
	Error     string   `json:"error,omitempty"`
	Restarts  int      `json:"restarts,omitempty"`
	Iters     int      `json:"iters,omitempty"`
	Recovered bool     `json:"recovered,omitempty"`
}

func fnv1aSum(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// appendRecord marshals and frames one record onto dst.
func appendRecord(dst []byte, rec *record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("journal: %w", err)
	}
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(len(payload)))
	binary.BigEndian.PutUint64(hdr[8:16], fnv1aSum(payload))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst, nil
}

// decodeRecords parses journal bytes into the longest valid prefix of
// records. It never fails and never panics: a missing or wrong file
// magic yields no records, and the first short, corrupt or
// implausible frame ends the parse — the torn tail a crash leaves
// behind is dropped, not fatal.
func decodeRecords(data []byte) []record {
	if len(data) < len(journalMagic) || !bytes.Equal(data[:len(journalMagic)], journalMagic[:]) {
		return nil
	}
	data = data[len(journalMagic):]
	var recs []record
	for len(data) >= recHeaderLen {
		n := binary.BigEndian.Uint64(data[0:8])
		if n > maxRecLen || uint64(len(data)-recHeaderLen) < n {
			break
		}
		payload := data[recHeaderLen : recHeaderLen+int(n)]
		if fnv1aSum(payload) != binary.BigEndian.Uint64(data[8:16]) {
			break
		}
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			break
		}
		recs = append(recs, rec)
		data = data[recHeaderLen+int(n):]
	}
	return recs
}

// replayJournal reads and decodes the journal at path. A missing file
// is an empty journal (first boot); any readable prefix of records is
// returned, however the file was torn.
func replayJournal(path string) []record {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	return decodeRecords(data)
}

// journal is the open write-ahead log. Appends are serialized and
// fsynced before they return, so a record the server has acted on is
// on stable storage first.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	frozen bool
}

// createJournal atomically rewrites path to hold exactly recs (the
// startup compaction) and opens the result for durable appends. The
// rewrite goes through a temp file, fsync, rename and directory sync,
// so a crash mid-compaction leaves either the old journal or the
// complete new one.
func createJournal(path string, recs []*record) (*journal, error) {
	buf := append([]byte(nil), journalMagic[:]...)
	var err error
	for _, r := range recs {
		if buf, err = appendRecord(buf, r); err != nil {
			return nil, err
		}
	}
	dir := filepath.Dir(path)
	tmpf, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	tmp := tmpf.Name()
	fail := func(e error) (*journal, error) {
		tmpf.Close()
		os.Remove(tmp)
		return nil, e
	}
	if _, err = tmpf.Write(buf); err != nil {
		return fail(err)
	}
	if err = tmpf.Sync(); err != nil {
		return fail(err)
	}
	if err = tmpf.Close(); err != nil {
		return fail(err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	if err = checkpoint.SyncDir(dir); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f, path: path}, nil
}

// append frames, writes and fsyncs one record. The caller must not
// act on the record (acknowledge a submit, publish a transition) until
// append returns nil.
func (j *journal) append(rec *record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.frozen {
		return nil
	}
	buf, err := appendRecord(nil, rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// freeze stops all further appends. It exists for crash-recovery
// tests: freezing the journal and then shutting the server down
// models a process killed at this instant — whatever the drain does
// afterwards never reaches the log, exactly as if the power had gone.
func (j *journal) freeze() {
	j.mu.Lock()
	j.frozen = true
	j.mu.Unlock()
}

func (j *journal) close() {
	j.mu.Lock()
	j.f.Close()
	j.mu.Unlock()
}
