package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
)

// Options tunes a Server. The zero value gets sensible defaults.
type Options struct {
	// Workers is the size of the worker pool — the number of jobs
	// simulating concurrently. Default 2.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker. A submit that
	// finds the queue full is rejected with a retry-after hint instead
	// of queued without bound: under heavy traffic the daemon degrades
	// by shedding load at the door, never by growing until it dies.
	// Default 16.
	QueueDepth int
	// EventBuffer is the per-subscriber event buffer. A subscriber
	// that falls this many events behind is dropped rather than
	// allowed to stall anything. Default 64.
	EventBuffer int
	// RetryAfter is the backoff hint attached to queue-full
	// rejections. Default 1s.
	RetryAfter time.Duration
	// WriteTimeout bounds a single event write to a subscriber
	// connection; a blocked socket past it drops the subscriber.
	// Default 10s.
	WriteTimeout time.Duration
	// MaxN and MaxIters, when positive, are per-job resource limits:
	// submissions exceeding them are rejected outright.
	MaxN, MaxIters int
	// Logf, when non-nil, receives server lifecycle messages.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 16
	}
	if o.EventBuffer < 1 {
		o.EventBuffer = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
}

// Server owns the job table, the bounded scheduler and the client
// connections. Create with New, serve with Serve, stop with Shutdown
// (idempotent; also reachable over the wire as the "shutdown"
// command).
type Server struct {
	opts Options

	mu       sync.Mutex // guards jobs/order/nextID and queue-close vs submit
	jobs     map[string]*Job
	order    []string
	nextID   int
	draining bool
	queue    chan *Job

	workerWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	ln       net.Listener
	lnMu     sync.Mutex
	shutOnce sync.Once
	done     chan struct{}

	running   atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	canceled  atomic.Int64
	failed    atomic.Int64
}

// New builds a Server and starts its worker pool. The pool idles until
// jobs arrive; Shutdown stops it.
func New(opts Options) *Server {
	opts.setDefaults()
	s := &Server{
		opts:  opts,
		jobs:  make(map[string]*Job),
		conns: make(map[net.Conn]struct{}),
		queue: make(chan *Job, opts.QueueDepth),
		done:  make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the listener closes. A close
// triggered by Shutdown returns nil; any other accept failure returns
// the error.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
			}
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Shutdown stops the server cleanly: new submissions are rejected, the
// listener closes, every queued and running job is canceled — running
// jobs stop at their next step boundary and write their checkpoint if
// they were given a path, so no work is silently lost — the workers
// drain, and client connections close. Safe to call more than once and
// from a connection handler (the wire "shutdown" command).
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() {
		s.logf("demd: shutting down")
		s.mu.Lock()
		s.draining = true
		for _, id := range s.order {
			s.cancelLocked(s.jobs[id])
		}
		close(s.queue)
		s.mu.Unlock()

		s.lnMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		s.lnMu.Unlock()

		s.workerWG.Wait()

		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		close(s.done)
	})
}

// Done is closed once Shutdown has fully drained.
func (s *Server) Done() <-chan struct{} { return s.done }

// Submit validates and enqueues a job, returning the wire response
// (also used directly by tests and embedders).
func (s *Server) Submit(spec *JobSpec) *Response {
	if spec == nil {
		return &Response{OK: false, Error: "submit needs a job spec"}
	}
	if s.opts.MaxN > 0 && spec.N > s.opts.MaxN {
		s.rejected.Add(1)
		return &Response{OK: false, Error: fmt.Sprintf("n=%d exceeds the per-job limit %d", spec.N, s.opts.MaxN)}
	}
	if s.opts.MaxIters > 0 && spec.Iters > s.opts.MaxIters {
		s.rejected.Add(1)
		return &Response{OK: false, Error: fmt.Sprintf("iters=%d exceeds the per-job limit %d", spec.Iters, s.opts.MaxIters)}
	}
	// Validate everything except the checkpoint load (the worker does
	// the real load; rejecting bad geometry/mode here keeps garbage out
	// of the queue).
	probe := *spec
	probe.Load = ""
	if _, _, err := probe.config(); err != nil {
		s.rejected.Add(1)
		return &Response{OK: false, Error: err.Error()}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		return &Response{OK: false, Error: "server is shutting down"}
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j%d", s.nextID), *spec)
	select {
	case s.queue <- job:
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.mu.Unlock()
		s.submitted.Add(1)
		return &Response{OK: true, ID: job.ID}
	default:
		s.nextID-- // the id was never exposed
		s.mu.Unlock()
		s.rejected.Add(1)
		return &Response{
			OK:           false,
			Error:        fmt.Sprintf("queue full (%d jobs waiting); retry later", s.opts.QueueDepth),
			RetryAfterMs: s.opts.RetryAfter.Milliseconds(),
		}
	}
}

// Cancel requests cancellation of a job by id.
func (s *Server) Cancel(id string) *Response {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return &Response{OK: false, Error: fmt.Sprintf("no job %q", id)}
	}
	s.cancelLocked(job)
	s.mu.Unlock()
	return &Response{OK: true, ID: id}
}

// cancelLocked flips the stop flag and, for a job no worker has
// claimed yet, retires it immediately. Held under s.mu.
func (s *Server) cancelLocked(job *Job) {
	job.cancel()
	job.mu.Lock()
	queued := job.state == StateQueued
	if queued {
		job.state = StateCanceled
	}
	job.mu.Unlock()
	if queued {
		s.canceled.Add(1)
		job.publishEvent(Event{Event: "state", State: StateCanceled.String()})
		job.hub.closeAll()
	}
}

// Status reports one job.
func (s *Server) Status(id string) *Response {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return &Response{OK: false, Error: fmt.Sprintf("no job %q", id)}
	}
	return &Response{OK: true, ID: id, Job: job.status()}
}

// List reports every job in submission order.
func (s *Server) List() *Response {
	s.mu.Lock()
	out := make([]*JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	return &Response{OK: true, Jobs: out}
}

// ServerStats snapshots the server-wide counters.
func (s *Server) ServerStats() *Response {
	return &Response{OK: true, Stats: &Stats{
		Workers:    s.opts.Workers,
		QueueDepth: len(s.queue),
		QueueCap:   s.opts.QueueDepth,
		Running:    int(s.running.Load()),
		Submitted:  s.submitted.Load(),
		Rejected:   s.rejected.Load(),
		Completed:  s.completed.Load(),
		Canceled:   s.canceled.Load(),
		Failed:     s.failed.Load(),
	}}
}

// worker pulls jobs off the bounded queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// claim transitions queued→running; false if the job was already
// retired (canceled while queued).
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// runJob executes one job end to end: build the config (loading the
// resume checkpoint if any), install the stop hook and the per-step
// event hook, run, and retire the job — writing the checkpoint on
// completion and on cancellation.
func (s *Server) runJob(j *Job) {
	if !j.claim() {
		return // canceled while queued; already retired
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	finish := func(st State, errMsg string) {
		j.setState(st, errMsg)
		switch st {
		case StateDone:
			s.completed.Add(1)
		case StateCanceled:
			s.canceled.Add(1)
		case StateFailed:
			s.failed.Add(1)
		}
		j.publishEvent(Event{Event: "state", State: st.String(), Error: errMsg})
		j.hub.closeAll()
		s.logf("demd: job %s %s (%d/%d iterations)", j.ID, st, j.itersDone.Load(), j.Spec.Iters)
	}

	cfg, restored, err := j.Spec.config()
	if err != nil {
		finish(StateFailed, err.Error())
		return
	}
	remaining := j.Spec.Iters - restored
	if remaining <= 0 {
		finish(StateFailed, fmt.Sprintf("checkpoint %s already holds %d iterations; iters=%d leaves nothing to run",
			j.Spec.Load, restored, j.Spec.Iters))
		return
	}
	j.itersStart = int64(restored)
	j.itersDone.Store(int64(restored))
	cfg.CollectState = j.Spec.Checkpoint != ""
	cfg.Stop = j.stop.Load
	cfg.OnStep = func(iter int, epot, ekin float64) {
		j.itersDone.Store(int64(restored + iter + 1))
		j.publishEvent(Event{Event: "step", Iter: restored + iter, Epot: epot, Ekin: ekin})
	}

	j.publishEvent(Event{Event: "state", State: StateRunning.String()})
	s.logf("demd: job %s running (%s, n=%d, %d iterations)", j.ID, cfg.Mode, cfg.N, remaining)

	res, err := core.Run(cfg, remaining)
	wasCanceled := errors.Is(err, core.ErrCanceled)
	if err != nil && !wasCanceled {
		finish(StateFailed, err.Error())
		return
	}
	done := restored + res.Iters
	j.itersDone.Store(int64(done))
	if j.Spec.Checkpoint != "" {
		snap, serr := checkpoint.FromResult(&cfg, res, done)
		if serr == nil {
			serr = checkpoint.SaveFile(j.Spec.Checkpoint, snap)
		}
		if serr != nil {
			finish(StateFailed, fmt.Sprintf("checkpoint: %v", serr))
			return
		}
		j.ckWritten.Store(true)
	}
	if wasCanceled {
		finish(StateCanceled, "")
		return
	}
	finish(StateDone, "")
}

// handleConn serves one client: a loop of JSON requests answered by
// JSON responses. "subscribe" turns the connection into an event
// stream until the job's stream ends (or the client is dropped for
// falling behind); afterwards the command loop resumes.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()
	dec := json.NewDecoder(c)
	enc := json.NewEncoder(c)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or garbage; either way the conversation is over
		}
		var resp *Response
		switch req.Cmd {
		case "submit":
			resp = s.Submit(req.Job)
		case "status":
			resp = s.Status(req.ID)
		case "cancel":
			resp = s.Cancel(req.ID)
		case "list":
			resp = s.List()
		case "stats":
			resp = s.ServerStats()
		case "shutdown":
			enc.Encode(&Response{OK: true})
			go s.Shutdown() // async: Shutdown waits for this very handler
			return
		case "subscribe":
			s.mu.Lock()
			job, ok := s.jobs[req.ID]
			s.mu.Unlock()
			if !ok {
				resp = &Response{OK: false, Error: fmt.Sprintf("no job %q", req.ID)}
				break
			}
			if err := enc.Encode(&Response{OK: true, ID: req.ID}); err != nil {
				return
			}
			if !s.streamEvents(c, job) {
				return
			}
			continue
		default:
			resp = &Response{OK: false, Error: fmt.Sprintf("unknown command %q (submit|status|cancel|list|subscribe|stats|shutdown)", req.Cmd)}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// streamEvents forwards a job's events to the connection until the
// stream ends. Returns false when the connection is dead and the
// handler should bail out.
func (s *Server) streamEvents(c net.Conn, job *Job) bool {
	sub := job.hub.subscribe(s.opts.EventBuffer)
	for b := range sub.ch {
		c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		n, err := c.Write(b)
		job.bytesOut.Add(int64(n))
		if err != nil {
			job.hub.unsubscribe(sub)
			// Drain whatever was buffered so the publisher side's
			// close finds an empty channel promptly.
			for range sub.ch {
			}
			return false
		}
	}
	// Terminate the stream deterministically: "dropped" when the
	// subscriber fell behind and lost events (reconnect and resync via
	// status), "eof" on a clean end — including a subscribe to a job
	// whose stream already ended, which would otherwise give the client
	// zero lines and no way to tell the stream is over.
	final := Event{Event: "eof", ID: job.ID}
	if sub.evicted.Load() {
		final.Event = "dropped"
	}
	if b, err := json.Marshal(final); err == nil {
		c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		n, werr := c.Write(append(b, '\n'))
		job.bytesOut.Add(int64(n))
		c.SetWriteDeadline(time.Time{})
		if werr != nil {
			return false
		}
	}
	return true
}
