package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
	"hybriddem/internal/fault"
)

// Options tunes a Server. The zero value gets sensible defaults.
type Options struct {
	// Workers is the size of the worker pool — the number of jobs
	// simulating concurrently. Default 2.
	Workers int
	// QueueDepth bounds the jobs waiting for a worker. A submit that
	// finds the queue full is rejected with a retry-after hint instead
	// of queued without bound: under heavy traffic the daemon degrades
	// by shedding load at the door, never by growing until it dies.
	// Default 16.
	QueueDepth int
	// EventBuffer is the per-subscriber event buffer. A subscriber
	// that falls this many events behind is dropped rather than
	// allowed to stall anything. Default 64.
	EventBuffer int
	// RetryAfter is the backoff hint attached to queue-full
	// rejections. Default 1s.
	RetryAfter time.Duration
	// WriteTimeout bounds a single event write to a subscriber
	// connection; a blocked socket past it drops the subscriber.
	// Default 10s.
	WriteTimeout time.Duration
	// MaxN and MaxIters, when positive, are per-job resource limits:
	// submissions exceeding them are rejected outright.
	MaxN, MaxIters int

	// DataDir, when set, makes the job lifecycle durable: the dir
	// holds the write-ahead journal (journal.wal) plus per-job
	// checkpoint files (jobs/<id>.ck) written every CheckpointEvery
	// measured iterations. A daemon restarted on the same DataDir
	// replays the journal, re-adopts every job it had accepted,
	// re-enqueues the interrupted ones and resumes them from their
	// last durable checkpoint. Empty DataDir keeps the PR-9 in-memory
	// behaviour.
	DataDir string
	// CheckpointEvery is the default durable checkpoint cadence in
	// measured iterations (per-job CheckpointEvery overrides it).
	// Default 256. Only meaningful with DataDir.
	CheckpointEvery int
	// MaxRestarts is the default per-job retry budget after retryable
	// faults (per-job MaxRestarts overrides it; negative means no
	// retries). Default 2.
	MaxRestarts int
	// RetryBackoff is the delay before the first retry of a faulted
	// job, doubling per consumed restart (capped at 64x). Default 1s.
	RetryBackoff time.Duration
	// Watchdog, when positive, arms core.Config.Watchdog for every job
	// (per-job WatchdogMs overrides it): a distributed attempt whose
	// communication goes silent that long dies with a timeout fault
	// instead of wedging its worker forever.
	Watchdog time.Duration

	// Logf, when non-nil, receives server lifecycle messages.
	Logf func(format string, args ...any)
}

func (o *Options) setDefaults() {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 16
	}
	if o.EventBuffer < 1 {
		o.EventBuffer = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.CheckpointEvery < 1 {
		o.CheckpointEvery = 256
	}
	if o.MaxRestarts == 0 {
		o.MaxRestarts = 2
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Second
	}
}

// Server owns the job table, the bounded scheduler and the client
// connections. Create with New, serve with Serve, stop with Shutdown
// (idempotent; also reachable over the wire as the "shutdown"
// command).
type Server struct {
	opts Options

	dataDir string   // Options.DataDir (empty: nothing durable)
	journal *journal // nil without a data dir

	mu          sync.Mutex // guards jobs/order/nextID, retryTimers, and queue sends vs close
	jobs        map[string]*Job
	order       []string
	nextID      int
	draining    bool
	queue       chan *Job
	retryTimers map[string]*time.Timer // armed backoff timers by job id

	workerWG sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	ln       net.Listener
	lnMu     sync.Mutex
	shutOnce sync.Once
	done     chan struct{}

	running   atomic.Int64
	submitted atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	canceled  atomic.Int64
	failed    atomic.Int64
	retried   atomic.Int64
	recovered atomic.Int64
}

// New builds a Server and starts its worker pool. With Options.DataDir
// set it first recovers: the journal is replayed, every job the
// previous incarnation had accepted is re-adopted (terminal jobs as
// history, interrupted ones re-enqueued to resume from their last
// durable checkpoint), and the journal is compacted. The pool idles
// until jobs arrive; Shutdown stops it.
func New(opts Options) (*Server, error) {
	opts.setDefaults()
	s := &Server{
		opts:        opts,
		jobs:        make(map[string]*Job),
		conns:       make(map[net.Conn]struct{}),
		retryTimers: make(map[string]*time.Timer),
		done:        make(chan struct{}),
	}
	var pending []*Job
	if opts.DataDir != "" {
		s.dataDir = opts.DataDir
		if err := os.MkdirAll(filepath.Join(s.dataDir, "jobs"), 0o755); err != nil {
			return nil, fmt.Errorf("demd: data dir: %w", err)
		}
		jpath := filepath.Join(s.dataDir, "journal.wal")
		pending = s.rebuild(replayJournal(jpath))
		j, err := createJournal(jpath, s.compactRecords())
		if err != nil {
			return nil, fmt.Errorf("demd: journal: %w", err)
		}
		s.journal = j
	}
	// The queue must absorb every recovered job without blocking New,
	// however small QueueDepth is relative to the crashed backlog.
	qcap := opts.QueueDepth
	if len(pending) > qcap {
		qcap = len(pending)
	}
	s.queue = make(chan *Job, qcap)
	for _, job := range pending {
		s.queue <- job
	}
	if n := len(pending); n > 0 {
		s.recovered.Add(int64(n))
		s.logf("demd: recovered %d interrupted job(s) from the journal", n)
	}
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// rebuild folds replayed journal records into the job table and
// resolves every job's post-crash fate: terminal jobs are kept as
// history, a job with a durable cancel request is retired canceled,
// and everything else — queued or running when the daemon died — is
// demoted to queued, marked recovered, and returned for re-enqueueing
// in original submission order. It never panics, whatever the journal
// held: unknown kinds, states and dangling ids are skipped.
func (s *Server) rebuild(recs []record) []*Job {
	for i := range recs {
		rec := &recs[i]
		switch rec.Kind {
		case "seq":
			if rec.Seq > s.nextID {
				s.nextID = rec.Seq
			}
		case "submit":
			if rec.Spec == nil || rec.ID == "" {
				continue
			}
			if rec.Seq > s.nextID {
				s.nextID = rec.Seq
			}
			if _, dup := s.jobs[rec.ID]; dup {
				continue
			}
			job := newJob(rec.ID, rec.Seq, *rec.Spec)
			s.jobs[rec.ID] = job
			s.order = append(s.order, rec.ID)
		case "state":
			job := s.jobs[rec.ID]
			if job == nil {
				continue
			}
			st, ok := stateByName(rec.State)
			if !ok {
				continue
			}
			job.state = st
			job.errMsg = rec.Error
			job.restarts.Store(int32(rec.Restarts))
			job.itersDone.Store(int64(rec.Iters))
			if rec.Recovered {
				job.recovered = true
			}
		case "cancel":
			if job := s.jobs[rec.ID]; job != nil {
				job.cancelReq = true
			}
		}
	}
	var pending []*Job
	for _, id := range s.order {
		job := s.jobs[id]
		switch job.state {
		case StateDone, StateCanceled, StateFailed:
			job.hub.closeAll()
			if job.Spec.Checkpoint != "" {
				if _, err := os.Stat(job.Spec.Checkpoint); err == nil {
					job.ckWritten.Store(true)
				}
			}
		default:
			if job.cancelReq {
				// The cancel intent was durable even though the daemon
				// died before the transition landed: honour it now.
				job.state = StateCanceled
				job.hub.closeAll()
				continue
			}
			job.state = StateQueued
			job.recovered = true
			pending = append(pending, job)
		}
	}
	return pending
}

// compactRecords renders the rebuilt job table as a minimal journal:
// the id high-water mark, then per job one submit record plus (when
// the job carries any state beyond freshly-queued) one state record.
func (s *Server) compactRecords() []*record {
	recs := []*record{{Kind: "seq", Seq: s.nextID}}
	for _, id := range s.order {
		job := s.jobs[id]
		recs = append(recs, &record{Kind: "submit", Seq: job.seq, ID: job.ID, Spec: &job.Spec})
		if job.state != StateQueued || job.restarts.Load() > 0 || job.recovered || job.itersDone.Load() > 0 {
			recs = append(recs, s.stateRecord(job, job.state, job.errMsg))
		}
	}
	return recs
}

// stateRecord assembles a journal state record from a job's current
// bookkeeping.
func (s *Server) stateRecord(j *Job, st State, errMsg string) *record {
	return &record{
		Kind: "state", ID: j.ID, State: st.String(), Error: errMsg,
		Restarts: int(j.restarts.Load()), Iters: int(j.itersDone.Load()),
		Recovered: j.recovered,
	}
}

// journalAppend durably appends one record, or does nothing without a
// data dir. Append failures on state transitions are logged, not
// fatal: the in-memory lifecycle must keep moving even if the disk
// under the journal degrades (the next restart simply re-runs a little
// more work).
func (s *Server) journalAppend(rec *record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.append(rec); err != nil {
		s.logf("demd: journal append: %v", err)
	}
}

func stateByName(name string) (State, bool) {
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateCanceled, StateFailed} {
		if st.String() == name {
			return st, true
		}
	}
	return 0, false
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// Serve accepts connections on ln until the listener closes. A close
// triggered by Shutdown returns nil; any other accept failure returns
// the error.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
			}
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Shutdown stops the server cleanly: new submissions are rejected, the
// listener closes, every queued and running job is canceled — running
// jobs stop at their next step boundary and write their checkpoint if
// they were given a path, so no work is silently lost — the workers
// drain, client connections close, and the journal closes last so the
// drain's own transitions reach it. Safe to call more than once and
// from a connection handler (the wire "shutdown" command).
func (s *Server) Shutdown() {
	s.shutOnce.Do(func() {
		s.logf("demd: shutting down")
		s.mu.Lock()
		s.draining = true
		for id, t := range s.retryTimers {
			t.Stop()
			delete(s.retryTimers, id)
		}
		for _, id := range s.order {
			s.cancelLocked(s.jobs[id])
		}
		close(s.queue)
		s.mu.Unlock()

		s.lnMu.Lock()
		if s.ln != nil {
			s.ln.Close()
		}
		s.lnMu.Unlock()

		s.workerWG.Wait()

		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		if s.journal != nil {
			s.journal.close()
		}
		close(s.done)
	})
}

// crash simulates the daemon dying at this instant, for recovery
// tests: the journal is frozen first, so nothing the orderly drain
// does afterwards reaches the log — the on-disk journal is exactly
// what kill -9 would have left — and then the goroutines are torn
// down. (Durable per-job checkpoints may still advance during the
// drain; recovery only resumes further along, which the bit-exactness
// contract is indifferent to.)
func (s *Server) crash() {
	if s.journal != nil {
		s.journal.freeze()
	}
	s.Shutdown()
}

// Done is closed once Shutdown has fully drained.
func (s *Server) Done() <-chan struct{} { return s.done }

// Submit validates and enqueues a job, returning the wire response
// (also used directly by tests and embedders). The job id is not
// acknowledged until the submit record is fsynced to the journal, so
// an accepted job can never be forgotten by a crash.
func (s *Server) Submit(spec *JobSpec) *Response {
	if spec == nil {
		return &Response{OK: false, Error: "submit needs a job spec"}
	}
	if s.opts.MaxN > 0 && spec.N > s.opts.MaxN {
		s.rejected.Add(1)
		return &Response{OK: false, Error: fmt.Sprintf("n=%d exceeds the per-job limit %d", spec.N, s.opts.MaxN)}
	}
	if s.opts.MaxIters > 0 && spec.Iters > s.opts.MaxIters {
		s.rejected.Add(1)
		return &Response{OK: false, Error: fmt.Sprintf("iters=%d exceeds the per-job limit %d", spec.Iters, s.opts.MaxIters)}
	}
	if err := validateLifecycle(spec); err != nil {
		s.rejected.Add(1)
		return &Response{OK: false, Error: err.Error()}
	}
	// Validate everything except the checkpoint load (the worker does
	// the real load; rejecting bad geometry/mode here keeps garbage out
	// of the queue).
	probe := *spec
	probe.Load = ""
	if _, _, err := probe.config(); err != nil {
		s.rejected.Add(1)
		return &Response{OK: false, Error: err.Error()}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		return &Response{OK: false, Error: "server is shutting down"}
	}
	if len(s.queue) == cap(s.queue) {
		s.mu.Unlock()
		s.rejected.Add(1)
		return &Response{
			OK:           false,
			Error:        fmt.Sprintf("queue full (%d jobs waiting); retry later", cap(s.queue)),
			RetryAfterMs: s.opts.RetryAfter.Milliseconds(),
		}
	}
	s.nextID++
	job := newJob(fmt.Sprintf("j%d", s.nextID), s.nextID, *spec)
	if s.journal != nil {
		if err := s.journal.append(&record{Kind: "submit", Seq: job.seq, ID: job.ID, Spec: &job.Spec}); err != nil {
			s.nextID-- // the id was never exposed
			s.mu.Unlock()
			s.rejected.Add(1)
			return &Response{OK: false, Error: fmt.Sprintf("journal: %v", err)}
		}
	}
	// Guaranteed not to block: the fullness check above and every other
	// queue send happen under s.mu, and workers only drain.
	s.queue <- job
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.mu.Unlock()
	s.submitted.Add(1)
	return &Response{OK: true, ID: job.ID}
}

// validateLifecycle rejects nonsensical durability/deadline fields at
// the door.
func validateLifecycle(spec *JobSpec) error {
	if spec.DeadlineMs < 0 || spec.StallWindowMs < 0 || spec.WatchdogMs < 0 {
		return fmt.Errorf("deadlineMs, stallWindowMs and watchdogMs must be non-negative")
	}
	if spec.MinStepsPerS < 0 {
		return fmt.Errorf("minStepsPerSec must be non-negative")
	}
	if spec.CheckpointEvery < 0 {
		return fmt.Errorf("checkpointEvery must be non-negative")
	}
	if spec.ChaosKill != "" {
		if _, _, err := parseKill(spec.ChaosKill); err != nil {
			return err
		}
		m, err := core.ModeByName(modeOrDefault(spec.Mode))
		if err != nil || !distributedMode(m) {
			return fmt.Errorf("chaosKill needs a distributed mode (mpi | hybrid | mpism)")
		}
	}
	return nil
}

func modeOrDefault(name string) string {
	if name == "" {
		return "serial"
	}
	return name
}

func distributedMode(m core.Mode) bool {
	return m == core.MPI || m == core.Hybrid || m == core.MPIsm
}

// maxRestartsFor resolves a job's retry budget: spec override, server
// default, never negative.
func (s *Server) maxRestartsFor(spec *JobSpec) int {
	m := spec.MaxRestarts
	if m == 0 {
		m = s.opts.MaxRestarts
	}
	return max(m, 0)
}

// Cancel requests cancellation of a job by id.
func (s *Server) Cancel(id string) *Response {
	s.mu.Lock()
	job, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return &Response{OK: false, Error: fmt.Sprintf("no job %q", id)}
	}
	s.cancelLocked(job)
	s.mu.Unlock()
	return &Response{OK: true, ID: id}
}

// cancelLocked makes the cancellation durable (the intent is journaled
// before anything moves, so a crash mid-cancel still cancels on
// recovery), flips the stop flag, disarms any pending retry, and
// retires a job no worker has claimed yet. Held under s.mu.
func (s *Server) cancelLocked(job *Job) {
	job.mu.Lock()
	st := job.state
	job.mu.Unlock()
	if st == StateDone || st == StateCanceled || st == StateFailed {
		return
	}
	s.journalAppend(&record{Kind: "cancel", ID: job.ID})
	if t, ok := s.retryTimers[job.ID]; ok {
		t.Stop()
		delete(s.retryTimers, job.ID)
	}
	job.cancel()
	job.mu.Lock()
	queued := job.state == StateQueued
	if queued {
		job.state = StateCanceled
	}
	job.mu.Unlock()
	if queued {
		s.canceled.Add(1)
		s.journalAppend(s.stateRecord(job, StateCanceled, ""))
		job.publishFinalEvent(Event{Event: "state", State: StateCanceled.String()})
	}
}

// Status reports one job.
func (s *Server) Status(id string) *Response {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return &Response{OK: false, Error: fmt.Sprintf("no job %q", id)}
	}
	return &Response{OK: true, ID: id, Job: job.status()}
}

// List reports every job in submission order.
func (s *Server) List() *Response {
	s.mu.Lock()
	out := make([]*JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	return &Response{OK: true, Jobs: out}
}

// ServerStats snapshots the server-wide counters.
func (s *Server) ServerStats() *Response {
	return &Response{OK: true, Stats: &Stats{
		Workers:    s.opts.Workers,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Running:    int(s.running.Load()),
		Submitted:  s.submitted.Load(),
		Rejected:   s.rejected.Load(),
		Completed:  s.completed.Load(),
		Canceled:   s.canceled.Load(),
		Failed:     s.failed.Load(),
		Retried:    s.retried.Load(),
		Recovered:  s.recovered.Load(),
	}}
}

// worker pulls jobs off the bounded queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// claim transitions queued→running; false if the job was already
// retired (canceled while queued).
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// runJob drives one execution attempt end to end: claim, journal the
// running transition, execute, and either schedule a retry (retryable
// fault with budget left) or retire the job in its terminal state.
func (s *Server) runJob(j *Job) {
	if !j.claim() {
		return // canceled while queued; already retired
	}
	s.running.Add(1)
	s.journalAppend(s.stateRecord(j, StateRunning, ""))
	j.publishEvent(Event{Event: "state", State: StateRunning.String()})
	s.logf("demd: job %s running (attempt %d)", j.ID, j.restarts.Load()+1)

	st, msg, retryable := s.execute(j)
	s.running.Add(-1)
	if retryable && s.scheduleRetry(j, msg) {
		return
	}
	s.finishJob(j, st, msg)
}

// finishJob retires a job in a terminal state: journal first, then the
// in-memory transition, counters, and the atomically-final event that
// ends the subscriber streams.
func (s *Server) finishJob(j *Job, st State, errMsg string) {
	s.journalAppend(s.stateRecord(j, st, errMsg))
	j.setState(st, errMsg)
	switch st {
	case StateDone:
		s.completed.Add(1)
	case StateCanceled:
		s.canceled.Add(1)
	case StateFailed:
		s.failed.Add(1)
	}
	j.publishFinalEvent(Event{Event: "state", State: st.String(), Error: errMsg})
	s.logf("demd: job %s %s (%d/%d iterations)", j.ID, st, j.itersDone.Load(), j.Spec.Iters)
}

// scheduleRetry re-queues a faulted job after exponential backoff if
// its journaled restart budget allows; false means the budget is
// exhausted (or the server is draining) and the caller must fail the
// job.
func (s *Server) scheduleRetry(j *Job, faultMsg string) bool {
	budget := s.maxRestartsFor(&j.Spec)
	if int(j.restarts.Load()) >= budget {
		return false
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	n := int(j.restarts.Add(1))
	s.journalAppend(s.stateRecord(j, StateQueued, faultMsg))
	j.setState(StateQueued, faultMsg)
	j.resetStop()
	backoff := s.opts.RetryBackoff << min(n-1, 6)
	t := time.AfterFunc(backoff, func() { s.enqueueRetry(j) })
	s.retryTimers[j.ID] = t
	s.mu.Unlock()
	s.retried.Add(1)
	j.publishEvent(Event{Event: "state", State: StateQueued.String(), Error: faultMsg})
	s.logf("demd: job %s fault (restart %d/%d, backoff %s): %s", j.ID, n, budget, backoff, faultMsg)
	return true
}

// enqueueRetry is the backoff timer's continuation: put the job back
// on the queue, unless it was canceled or the server is draining. A
// full queue re-arms the timer instead of blocking (retried jobs never
// jump the backpressure contract).
func (s *Server) enqueueRetry(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.retryTimers, j.ID)
	if s.draining {
		return
	}
	j.mu.Lock()
	st := j.state
	j.mu.Unlock()
	if st != StateQueued {
		return // canceled during backoff
	}
	if len(s.queue) == cap(s.queue) {
		t := time.AfterFunc(s.opts.RetryAfter, func() { s.enqueueRetry(j) })
		s.retryTimers[j.ID] = t
		return
	}
	s.queue <- j
}

// durablePath is where the daemon keeps a job's own crash-recovery
// checkpoint, distinct from the client-visible Spec.Checkpoint. Empty
// without a data dir.
func (s *Server) durablePath(j *Job) string {
	if s.dataDir == "" {
		return ""
	}
	return filepath.Join(s.dataDir, "jobs", j.ID+".ck")
}

// saveCk checkpoints a run result crash-safely.
func saveCk(path string, cfg *core.Config, res *core.Result, iters int) error {
	snap, err := checkpoint.FromResult(cfg, res, iters)
	if err != nil {
		return err
	}
	return checkpoint.SaveFile(path, snap)
}

// execute runs one attempt of a job and classifies the outcome:
// terminal state, error message, and whether the outcome is a
// retryable fault. It resumes from the job's durable checkpoint when
// one exists (falling back to the client's own Load on corruption),
// runs distributed modes under core.Supervise so faults roll back
// in-process first, checkpoints durably every CheckpointEvery
// iterations, and enforces the wall-clock and progress-floor deadlines
// through the core.Config.Stop surface.
func (s *Server) execute(j *Job) (st State, errMsg string, retryable bool) {
	spec := &j.Spec
	durable := s.durablePath(j)

	eff := *spec
	fromDurable := false
	if durable != "" {
		if _, err := os.Stat(durable); err == nil {
			eff.Load = durable
			fromDurable = true
		}
	}
	cfg, restored, err := eff.config()
	if err != nil && fromDurable {
		// The durable checkpoint is unusable (torn write the frame
		// check caught, or physics drift): fall back to the client's
		// own resume point rather than wedging the job.
		s.logf("demd: job %s: durable checkpoint unusable (%v); falling back", j.ID, err)
		eff.Load = spec.Load
		fromDurable = false
		cfg, restored, err = eff.config()
	}
	if err != nil {
		return StateFailed, err.Error(), false
	}
	total := spec.Iters
	if remaining := total - restored; remaining <= 0 {
		if fromDurable && restored >= total {
			// The previous daemon finished the work and died inside the
			// window between the final durable checkpoint and the
			// journal acknowledgment; adopt the result instead of
			// re-running or failing.
			if spec.Checkpoint != "" && !j.ckWritten.Load() {
				snap, lerr := checkpoint.LoadFile(durable)
				if lerr == nil {
					lerr = checkpoint.SaveFile(spec.Checkpoint, snap)
				}
				if lerr != nil {
					return StateFailed, fmt.Sprintf("checkpoint: %v", lerr), false
				}
				j.ckWritten.Store(true)
			}
			return StateDone, "", false
		}
		return StateFailed, fmt.Sprintf("checkpoint %s already holds %d iterations; iters=%d leaves nothing to run",
			eff.Load, restored, total), false
	}

	j.itersStart = int64(restored)
	j.itersDone.Store(int64(restored))
	cfg.CollectState = spec.Checkpoint != "" || durable != ""
	if spec.WatchdogMs > 0 {
		cfg.Watchdog = time.Duration(spec.WatchdogMs) * time.Millisecond
	} else {
		cfg.Watchdog = s.opts.Watchdog
	}
	cfg.Faults = j.faultPlan()

	// The stop hook multiplexes cancellation, the wall-clock deadline
	// and the progress floor onto core's one cooperative-stop surface;
	// the job's stopReason records which fired first. The hook is
	// polled from a single goroutine per attempt (rank 0 / the run
	// loop), so the window locals are unshared.
	deadline := time.Duration(spec.DeadlineMs) * time.Millisecond
	stallWin := time.Duration(spec.StallWindowMs) * time.Millisecond
	if stallWin <= 0 {
		stallWin = 2 * time.Second
	}
	attemptStart := time.Now()
	winStart := attemptStart
	winIters := int64(restored)
	cfg.Stop = func() bool {
		if j.stop.Load() {
			return true
		}
		now := time.Now()
		if deadline > 0 && now.Sub(attemptStart) > deadline {
			j.trip(stopDeadline)
			return true
		}
		if spec.MinStepsPerS > 0 {
			if el := now.Sub(winStart); el >= stallWin {
				done := j.itersDone.Load()
				if rate := float64(done-winIters) / el.Seconds(); rate < spec.MinStepsPerS {
					j.trip(stopStalled)
					return true
				}
				winStart, winIters = now, done
			}
		}
		return false
	}

	every := spec.CheckpointEvery
	if every == 0 {
		every = s.opts.CheckpointEvery
	}
	if durable == "" {
		every = 0 // nothing durable to write mid-run
	}
	runSeg := func(c core.Config, n int) (*core.Result, error) {
		if distributedMode(c.Mode) {
			return core.Supervise(c, n, core.FTConfig{
				SnapshotEvery: 1,
				OnFault: func(attempt int, fe *fault.Error) {
					s.logf("demd: job %s in-run fault (attempt %d): %v", j.ID, attempt, fe)
				},
			})
		}
		return core.Run(c, n)
	}

	// Run in durable-checkpoint-sized chunks (one chunk covering the
	// whole remainder without a data dir). Each chunk start rebuilds the
	// neighbor list, so the chunk grid is part of the trajectory: chunks
	// are aligned to absolute multiples of the cadence — a crashed job
	// resumes mid-grid with a short first chunk — so a recovered run
	// revisits exactly the boundaries an unbroken run of the same daemon
	// would, and lands on the same bits.
	done := restored
	chunkCfg := cfg
	var lastRes *core.Result
	wasCanceled := false
	for done < total {
		n := total - done
		if every > 0 {
			if toGrid := every - done%every; toGrid < n {
				n = toGrid
			}
		}
		base := done
		chunkCfg.OnStep = func(iter int, epot, ekin float64) {
			j.itersDone.Store(int64(base + iter + 1))
			j.publishEvent(Event{Event: "step", Iter: base + iter, Epot: epot, Ekin: ekin})
		}
		res, rerr := runSeg(chunkCfg, n)
		wasCanceled = errors.Is(rerr, core.ErrCanceled)
		if rerr != nil && !wasCanceled {
			if j.stopReason.Load() == stopCancel {
				// Canceled while the supervisor was mid-recovery: the
				// attempt has no resumable result, but the user asked
				// for cancellation, not failure.
				return StateCanceled, "", false
			}
			if fault.From(rerr) != nil {
				return StateFailed, rerr.Error(), true
			}
			return StateFailed, rerr.Error(), false
		}
		done += res.Iters
		j.itersDone.Store(int64(done))
		lastRes = res
		if durable != "" {
			if serr := saveCk(durable, &chunkCfg, res, done); serr != nil {
				return StateFailed, fmt.Sprintf("checkpoint: %v", serr), false
			}
		}
		if wasCanceled {
			break
		}
		// A stop that latched inside the chunk but was never honoured —
		// a static bed rebuilds no neighbor lists, and a chunk shorter
		// than core's grace budget ends before the grace runs out — must
		// not leak into the next chunk, where the latch would re-arm
		// with a fresh budget and the job would run to completion. The
		// chunk boundary sits on the cadence grid (the canonical
		// resumable state), so honour the request here.
		if j.stop.Load() {
			wasCanceled = true
			break
		}
		// Chain the next chunk off this one's final state; the warm-up
		// (if any) is already inside it.
		chunkCfg.Init = &core.State{Pos: res.Pos, Vel: res.Vel}
		chunkCfg.InitTree = res.Tree
		chunkCfg.Warmup = 0
	}

	if spec.Checkpoint != "" && lastRes != nil {
		if serr := saveCk(spec.Checkpoint, &chunkCfg, lastRes, done); serr != nil {
			return StateFailed, fmt.Sprintf("checkpoint: %v", serr), false
		}
		j.ckWritten.Store(true)
	}
	if wasCanceled {
		switch j.stopReason.Load() {
		case stopDeadline:
			return StateFailed, fmt.Sprintf("wall-clock deadline %s exceeded after %d/%d iterations",
				deadline, done, total), false
		case stopStalled:
			return StateFailed, fmt.Sprintf("progress below %g steps/s over %s (%d/%d iterations)",
				spec.MinStepsPerS, stallWin, done, total), true
		default:
			return StateCanceled, "", false
		}
	}
	return StateDone, "", false
}

// handleConn serves one client: a loop of JSON requests answered by
// JSON responses. "subscribe" turns the connection into an event
// stream until the job's stream ends (or the client is dropped for
// falling behind); afterwards the command loop resumes.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()
	dec := json.NewDecoder(c)
	enc := json.NewEncoder(c)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF or garbage; either way the conversation is over
		}
		var resp *Response
		switch req.Cmd {
		case "submit":
			resp = s.Submit(req.Job)
		case "status":
			resp = s.Status(req.ID)
		case "cancel":
			resp = s.Cancel(req.ID)
		case "list":
			resp = s.List()
		case "stats":
			resp = s.ServerStats()
		case "shutdown":
			enc.Encode(&Response{OK: true})
			go s.Shutdown() // async: Shutdown waits for this very handler
			return
		case "subscribe":
			s.mu.Lock()
			job, ok := s.jobs[req.ID]
			s.mu.Unlock()
			if !ok {
				resp = &Response{OK: false, Error: fmt.Sprintf("no job %q", req.ID)}
				break
			}
			if err := enc.Encode(&Response{OK: true, ID: req.ID}); err != nil {
				return
			}
			if !s.streamEvents(c, job) {
				return
			}
			continue
		default:
			resp = &Response{OK: false, Error: fmt.Sprintf("unknown command %q (submit|status|cancel|list|subscribe|stats|shutdown)", req.Cmd)}
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// writeEventLine writes one already-framed event line under the write
// deadline, charging the job's byte counter; false means the
// connection is dead.
func (s *Server) writeEventLine(c net.Conn, job *Job, b []byte) bool {
	c.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
	n, err := c.Write(b)
	job.bytesOut.Add(int64(n))
	c.SetWriteDeadline(time.Time{})
	return err == nil
}

// streamEvents forwards a job's events to the connection until the
// stream ends. Returns false when the connection is dead and the
// handler should bail out.
//
// A subscribe that arrives after the job's stream already ended gets a
// deterministic terminal replay: one synthesized state event carrying
// the final state, then the eof terminator. (Subscribers attached
// while the job ran saw the real terminal event — publishFinal
// delivers it and closes the stream under one lock, so there is no
// window to attach between the two.)
func (s *Server) streamEvents(c net.Conn, job *Job) bool {
	sub, ended := job.hub.subscribe(s.opts.EventBuffer)
	if ended {
		st, errMsg, _ := job.snapshot()
		final := Event{
			Event: "state", ID: job.ID, State: st.String(), Error: errMsg,
			Iter: int(job.itersDone.Load()),
		}
		if b, err := json.Marshal(final); err == nil {
			if !s.writeEventLine(c, job, append(b, '\n')) {
				return false
			}
		}
	}
	for b := range sub.ch {
		if !s.writeEventLine(c, job, b) {
			job.hub.unsubscribe(sub)
			// Drain whatever was buffered so the publisher side's
			// close finds an empty channel promptly.
			for range sub.ch {
			}
			return false
		}
	}
	// Terminate the stream deterministically: "dropped" when the
	// subscriber fell behind and lost events (reconnect and resync via
	// status), "eof" on a clean end.
	final := Event{Event: "eof", ID: job.ID}
	if sub.evicted.Load() {
		final.Event = "dropped"
	}
	if b, err := json.Marshal(final); err == nil {
		if !s.writeEventLine(c, job, append(b, '\n')) {
			return false
		}
	}
	return true
}
