package hybriddem_test

import (
	"math"
	"path/filepath"
	"testing"

	"hybriddem"
)

// TestPublicAPIRoundTrip drives the façade exactly as the README's
// quick start does.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := hybriddem.Default(3, 2000)
	cfg.Mode = hybriddem.Hybrid
	cfg.P, cfg.T = 2, 2
	cfg.Method = hybriddem.SelectedAtomic
	cfg.Platform = hybriddem.CompaqES40()
	cfg.InitVel = 0.5
	res, err := hybriddem.Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerIter <= 0 || res.NLinks == 0 {
		t.Errorf("implausible result: %+v", res)
	}
	if math.IsNaN(res.Epot + res.Ekin) {
		t.Error("NaN energies")
	}
}

func TestPublicPlatforms(t *testing.T) {
	if len(hybriddem.Platforms()) != 3 {
		t.Error("expected three platforms")
	}
	for _, name := range []string{"Sun", "T3E", "CPQ"} {
		pf, err := hybriddem.PlatformByName(name)
		if err != nil || pf == nil {
			t.Errorf("PlatformByName(%s): %v", name, err)
		}
	}
	if hybriddem.SunHPC().MaxCPUs() != 8 {
		t.Error("Sun shape")
	}
	if hybriddem.T3E().CPUsPerNode != 1 {
		t.Error("T3E shape")
	}
	if hybriddem.CompaqES40().Nodes != 5 {
		t.Error("CPQ shape")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(hybriddem.Experiments()) < 14 {
		t.Errorf("only %d experiments registered", len(hybriddem.Experiments()))
	}
	e, err := hybriddem.ExperimentByID("T1")
	if err != nil || e.ID != "T1" {
		t.Fatalf("ExperimentByID: %v", err)
	}
	rep := e.Run(hybriddem.ExperimentOptions{N: 5000, Iters: 1, Warmup: 1, Seed: 1})
	if len(rep.Rows) != 12 {
		t.Errorf("T1 produced %d rows", len(rep.Rows))
	}
}

func TestMeasureCheckpointExportThroughFacade(t *testing.T) {
	dir := t.TempDir()
	cfg := hybriddem.Default(2, 1500)
	cfg.Seed = 3
	cfg.CollectState = true
	res, err := hybriddem.Run(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}

	obs, err := hybriddem.Measure(&cfg, res)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 2-D density is ~0.785 area fraction.
	if math.Abs(obs.PackingFraction-0.785) > 0.02 {
		t.Errorf("packing fraction %g", obs.PackingFraction)
	}
	if obs.Coordination <= 0 || obs.Pressure <= 0 {
		t.Errorf("observables: %+v", obs)
	}
	if len(obs.RDF) != len(obs.RDFRadii) || len(obs.RDF) == 0 {
		t.Error("rdf shape")
	}

	ck := filepath.Join(dir, "s.gob")
	if err := hybriddem.SaveCheckpoint(ck, &cfg, res, 10); err != nil {
		t.Fatal(err)
	}
	resume := hybriddem.Default(2, 1500)
	resume.Seed = 3
	if _, err := hybriddem.LoadCheckpoint(ck, &resume); err != nil {
		t.Fatal(err)
	}
	if resume.Init == nil {
		t.Error("checkpoint did not install an initial state")
	}

	for _, name := range []string{"s.vtk", "s.xyz", "s.csv"} {
		if err := hybriddem.ExportState(filepath.Join(dir, name), &cfg, res); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestVerify is the façade's verification sub-tree: the differential
// conformance matrix and the generated scenario families exercised
// through the public API, the same machinery cmd/demrun exposes behind
// -verify.
func TestVerify(t *testing.T) {
	t.Run("conformance", func(t *testing.T) {
		cfg, err := hybriddem.Scenario(hybriddem.ScenarioUniform, 2, 220, 17)
		if err != nil {
			t.Fatal(err)
		}
		c, err := hybriddem.RunConformance(cfg, 20, 0)
		if err != nil {
			t.Fatal(err)
		}
		if failed := c.Failed(); len(failed) > 0 {
			t.Fatalf("conformance failed:\n%s", c)
		}
	})
	t.Run("scenarios", func(t *testing.T) {
		kinds := []hybriddem.ScenarioKind{
			hybriddem.ScenarioUniform, hybriddem.ScenarioClustered,
			hybriddem.ScenarioBondedGrains, hybriddem.ScenarioDegenerateGrid,
			hybriddem.ScenarioNearBoundary,
		}
		for _, k := range kinds {
			cfg, err := hybriddem.Scenario(k, 2, 80, 5)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			if _, err := hybriddem.Run(cfg, 3); err != nil {
				t.Errorf("%v: %v", k, err)
			}
		}
	})
	t.Run("divergence-reporting", func(t *testing.T) {
		cfg, err := hybriddem.Scenario(hybriddem.ScenarioUniform, 2, 100, 6)
		if err != nil {
			t.Fatal(err)
		}
		// An absurdly tight tolerance must flag the threaded variants
		// (summation order differs) and attach a localization.
		c, err := hybriddem.RunConformance(cfg, 10, 1e-300)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range c.Failed() {
			if r.Err == nil && r.Div == nil {
				t.Errorf("%s: failed without a divergence record", r.Name)
			}
		}
	})
}

func TestModesAgreeThroughFacade(t *testing.T) {
	run := func(mode hybriddem.Mode, p, t_ int) *hybriddem.Result {
		cfg := hybriddem.Default(2, 400)
		cfg.Mode = mode
		cfg.P, cfg.T = p, t_
		cfg.InitVel = 1
		cfg.Seed = 9
		cfg.CollectState = true
		res, err := hybriddem.Run(cfg, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(hybriddem.Serial, 1, 1)
	mpi := run(hybriddem.MPI, 4, 1)
	cfg := hybriddem.Default(2, 400)
	box := cfg.Box()
	maxd := 0.0
	for i := range serial.Pos {
		if d := box.Dist2(serial.Pos[i], mpi.Pos[i]); d > maxd {
			maxd = d
		}
	}
	if math.Sqrt(maxd) > 1e-7 {
		t.Errorf("serial and MPI trajectories diverge through the façade: %g", math.Sqrt(maxd))
	}
}
