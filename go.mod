module hybriddem

go 1.22
