// Package hybriddem is a Go reproduction of D. S. Henty's SC 2000
// study "Performance of Hybrid Message-Passing and Shared-Memory
// Parallelism for Discrete Element Modeling".
//
// It provides a complete discrete element model (identical elastic
// spheres evolved with a link-cell neighbour list) parallelised four
// ways over substrates built from scratch in this module:
//
//   - Serial: one store, one cell grid.
//   - OpenMP: a fork-join thread-team runtime (internal/shm) with the
//     paper's five strategies for protecting concurrent force updates
//     (atomic, selected atomic, critical/stripe/transpose reductions).
//   - MPI: a message-passing runtime (internal/mp) driving a
//     block-cyclic domain decomposition with halo exchange and
//     particle migration (internal/decomp).
//   - Hybrid: both at once — MPI between nodes, threads within.
//
// Runs execute with real concurrency (goroutines) and simultaneously
// carry virtual clocks priced by calibrated models of the paper's
// three platforms — a Cray T3E-900, a Sun HPC 3500 and a Compaq ES40
// cluster (internal/machine) — so the paper's tables and figures can
// be regenerated on commodity hardware (internal/bench, cmd/dembench).
//
// Quick start:
//
//	cfg := hybriddem.Default(3, 10_000) // D=3, 10k particles
//	cfg.Mode = hybriddem.Hybrid
//	cfg.P, cfg.T = 4, 4
//	cfg.Platform = hybriddem.CompaqES40()
//	res, err := hybriddem.Run(cfg, 20)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package hybriddem

import (
	"fmt"

	"hybriddem/internal/bench"
	"hybriddem/internal/cell"
	"hybriddem/internal/checkpoint"
	"hybriddem/internal/core"
	"hybriddem/internal/decomp"
	"hybriddem/internal/export"
	"hybriddem/internal/fault"
	"hybriddem/internal/force"
	"hybriddem/internal/geom"
	"hybriddem/internal/grain"
	"hybriddem/internal/machine"
	"hybriddem/internal/measure"
	"hybriddem/internal/mp"
	"hybriddem/internal/particle"
	"hybriddem/internal/shm"
	"hybriddem/internal/trace"
	"hybriddem/internal/verify"
)

// Config describes one simulation run; start from Default and
// override. See the field documentation in internal/core.
type Config = core.Config

// Result reports a run's modelled timings, energies and counters.
type Result = core.Result

// Mode selects the parallelisation model.
type Mode = core.Mode

// Execution modes.
const (
	Serial = core.Serial
	OpenMP = core.OpenMP
	MPI    = core.MPI
	Hybrid = core.Hybrid
	MPIsm  = core.MPIsm // MPI+MPI_sm: shared-memory windows within each node
)

// ModeByName resolves a command-line mode name (case-insensitive); the
// error lists the valid names.
func ModeByName(name string) (Mode, error) { return core.ModeByName(name) }

// ModeNames returns the command-line names of all execution modes in
// declaration order.
func ModeNames() []string { return core.ModeNames() }

// Strategy selects the dynamic load-balancing algorithm of the
// distributed modes (Config.Rebalance).
type Strategy = core.Strategy

// Rebalance strategies.
const (
	RebalanceOff = core.RebalanceOff // static block-cyclic deal
	RebalanceLPT = core.RebalanceLPT // longest-processing-time block re-deal
	RebalanceORB = core.RebalanceORB // orthogonal recursive bisection (contiguous bricks)
)

// StrategyByName resolves a command-line rebalance-strategy name
// (case-insensitive); the error lists the valid names.
func StrategyByName(name string) (Strategy, error) { return core.StrategyByName(name) }

// StrategyNames returns the command-line names of all rebalance
// strategies in declaration order.
func StrategyNames() []string { return core.StrategyNames() }

// StrategyFlag adapts a Strategy to the flag.Value interface: a bare
// -rebalance means lpt (the historical boolean behaviour), =false
// means off, and =off|lpt|orb names a strategy directly.
type StrategyFlag = core.StrategyFlag

// ORBTree is the adaptive orthogonal-recursive-bisection decomposition
// a RebalanceORB run adopts; checkpoints carry it so a resumed run
// keeps its cut planes (Config.InitTree, Result.Tree).
type ORBTree = decomp.ORBTree

// Method selects the shared-memory force-update protection strategy.
type Method = shm.Method

// Force-update strategies (Section 7 of the paper).
const (
	Atomic            = shm.Atomic
	SelectedAtomic    = shm.SelectedAtomic
	CriticalReduction = shm.CriticalReduction
	Stripe            = shm.Stripe
	Transpose         = shm.Transpose
)

// Boundary selects the global boundary condition.
type Boundary = geom.Boundary

// Boundary conditions.
const (
	Periodic   = geom.Periodic
	Reflecting = geom.Reflecting
)

// Platform is a virtual machine cost model.
type Platform = machine.Platform

// SunHPC returns the 8-CPU Sun HPC 3500 model (software locks, one
// big SMP).
func SunHPC() *Platform { return machine.SunHPC() }

// T3E returns the Cray T3E-900 model (single-CPU nodes, 8-byte
// integers, fast torus network).
func T3E() *Platform { return machine.T3E() }

// CompaqES40 returns the 5-box, 4-CPU-per-box ES40 cluster model
// (hardware atomics, memory-channel interconnect).
func CompaqES40() *Platform { return machine.CompaqES40() }

// Platforms returns the three benchmark machines in the paper's
// order.
func Platforms() []*Platform { return machine.Platforms() }

// PlatformByName resolves "Sun", "T3E" or "CPQ".
func PlatformByName(name string) (*Platform, error) { return machine.ByName(name) }

// Default returns the paper's benchmark configuration scaled to n
// particles in d dimensions (d in {2, 3} for the paper's runs).
func Default(d, n int) Config { return core.Default(d, n) }

// Run executes a simulation for the configured warmup plus iters
// measured iterations and returns its measurements.
func Run(cfg Config, iters int) (*Result, error) { return core.Run(cfg, iters) }

// ErrCanceled is the error Run and Supervise return when Config.Stop
// asked the run to stop at a step boundary. It arrives alongside a
// valid partial Result (Iters holds the completed count), so the
// interrupted state can be checkpointed and resumed.
var ErrCanceled = core.ErrCanceled

// State is an explicit initial condition (positions and velocities
// indexed by particle ID) for Config.Init.
type State = core.State

// BondTable records the permanent dissipative-spring bonds that glue
// basic particles into composite grains (Config.Spring.Bonds).
type BondTable = force.BondTable

// NewBondTable creates a bond table for n particles with at most
// maxBonds bonds each and the given spring constants.
func NewBondTable(n, maxBonds int, k, damp float64) *BondTable {
	return force.NewBondTable(n, maxBonds, k, damp)
}

// GrainShape selects a composite-grain geometry.
type GrainShape = grain.Shape

// Grain shapes.
const (
	Dimer  = grain.Dimer
	Trimer = grain.Trimer
	Chain  = grain.Chain
	Tetra  = grain.Tetra
)

// GrainConfig describes a composite-grain packing.
type GrainConfig = grain.Config

// BuildGrains places composite grains (the paper's "complex particles
// with simple forces") and returns the initial state plus the bond
// table; wire them into a Config via Init and Spring.Bonds:
//
//	gs, bonds, err := hybriddem.BuildGrains(gc)
//	cfg.Init = &hybriddem.State{Pos: gs.Pos, Vel: gs.Vel}
//	cfg.Spring.Bonds = bonds
func BuildGrains(gc GrainConfig) (*State, *BondTable, error) {
	gs, bonds, err := grain.Build(gc)
	if err != nil {
		return nil, nil, err
	}
	return &State{Pos: gs.Pos, Vel: gs.Vel}, bonds, nil
}

// Timeline records per-rank phase spans in virtual time when wired
// into Config.Timeline; see cmd/demtrace for rendering.
type Timeline = trace.Timeline

// Snapshot is a saved simulation state (positions, velocities,
// geometry) for checkpoint/restart; see the checkpoint functions.
type Snapshot = checkpoint.Snapshot

// SaveCheckpoint captures a finished run (made with
// Config.CollectState) into a snapshot file.
func SaveCheckpoint(path string, cfg *Config, res *Result, itersDone int) error {
	snap, err := checkpoint.FromResult(cfg, res, itersDone)
	if err != nil {
		return err
	}
	return checkpoint.SaveFile(path, snap)
}

// LoadCheckpoint reads a snapshot file and installs it as cfg's
// initial condition after validating the geometry.
func LoadCheckpoint(path string, cfg *Config) (*Snapshot, error) {
	snap, err := checkpoint.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if err := snap.Apply(cfg); err != nil {
		return nil, err
	}
	return snap, nil
}

// ExportState writes a run's collected final state (Config with
// CollectState set) to a .vtk, .xyz or .csv file for visualisation.
func ExportState(path string, cfg *Config, res *Result) error {
	if res.Pos == nil {
		return fmt.Errorf("hybriddem: run did not collect state (set Config.CollectState)")
	}
	ps := particle.New(cfg.D, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ps.Append(res.Pos[i], res.Vel[i], int32(i))
	}
	box := cfg.Box()
	return export.SaveFile(path, ps, cfg.N, [3]float64{box.Len[0], box.Len[1], box.Len[2]})
}

// Observables bundles the granular physics measurements of a
// collected final state.
type Observables struct {
	PackingFraction float64   // occupied volume fraction
	Temperature     float64   // kinetic temperature (k_B = m = 1)
	Coordination    float64   // mean touching neighbours per particle
	Pressure        float64   // virial pressure
	RDFRadii        []float64 // radial distribution bin centres
	RDF             []float64 // g(r) per bin
}

// Measure computes the observables of a run's final state (the run
// must have been made with Config.CollectState). The pair quantities
// are evaluated on a freshly built link list at the configured
// cutoff.
func Measure(cfg *Config, res *Result) (*Observables, error) {
	if res.Pos == nil {
		return nil, fmt.Errorf("hybriddem: run did not collect state (set Config.CollectState)")
	}
	ps := particle.New(cfg.D, cfg.N)
	for i := 0; i < cfg.N; i++ {
		ps.Append(res.Pos[i], res.Vel[i], int32(i))
	}
	box := cfg.Box()
	rc := cfg.RC()
	g := cell.NewGrid(cfg.D, geom.Vec{}, box.Len, rc, box.BC == geom.Periodic)
	g.Bin(&ps.Pos, cfg.N, nil)
	list := g.BuildLinks(&ps.Pos, cfg.N, cfg.N, rc*rc, box, nil)

	const rdfBins = 24
	rdf := measure.PairCorrelation(ps, list.Links, cfg.N, box, rc, rdfBins)
	return &Observables{
		PackingFraction: measure.PackingFraction(ps, cfg.N, cfg.Spring.Diameter, box),
		Temperature:     measure.Temperature(ps, cfg.N),
		Coordination:    measure.Coordination(ps, list.Links, cfg.N, cfg.Spring.Diameter, box),
		Pressure:        measure.Pressure(ps, list.Links, cfg.N, cfg.Spring, box),
		RDFRadii:        rdf.BinCenters(),
		RDF:             rdf.Bins,
	}, nil
}

// Conformance is the outcome of a differential verification run: one
// result per execution-mode × strategy × reordering variant, each
// compared step by step against the serial baseline.
type Conformance = verify.Conformance

// Divergence localises the first disagreement between two trajectories
// (step, particle, field, component).
type Divergence = verify.Divergence

// RunConformance pushes cfg through every execution mode, force-update
// strategy and reordering setting and compares whole trajectories
// against the serial baseline over iters steps; tol <= 0 selects the
// default 1e-7. The configuration's Mode/P/T fields are overridden per
// variant and the virtual platform is stripped (correctness runs do
// not model cost).
func RunConformance(cfg Config, iters int, tol float64) (*Conformance, error) {
	return verify.RunConformance(cfg, iters, tol)
}

// ScenarioKind selects a family of generated verification scenarios.
type ScenarioKind = verify.Kind

// Verification scenario families.
const (
	ScenarioUniform        = verify.Uniform
	ScenarioClustered      = verify.Clustered
	ScenarioBondedGrains   = verify.BondedGrains
	ScenarioDegenerateGrid = verify.DegenerateGrid
	ScenarioNearBoundary   = verify.NearBoundary
)

// Scenario builds a deterministic verification initial condition of
// the given family: a ready-to-run Config with an explicit Init state.
func Scenario(k ScenarioKind, d, n int, seed int64) (Config, error) {
	return verify.Scenario(k, d, n, seed)
}

// FaultPlan is a seeded, deterministic fault-injection plan for
// distributed runs: it can kill a rank at a chosen step and corrupt,
// duplicate or delay point-to-point messages (Config.Faults).
type FaultPlan = mp.FaultPlan

// FaultStats counts the injections a plan actually applied.
type FaultStats = mp.FaultStats

// NewFaultPlan returns an empty plan drawing its decisions from seed;
// set the probability fields and ArmKill to arm it.
func NewFaultPlan(seed int64) *FaultPlan { return mp.NewFaultPlan(seed) }

// FaultError is the typed error every detected fault surfaces as:
// killed ranks, corrupted or out-of-sequence messages, watchdog
// timeouts, abandoned collectives.
type FaultError = fault.Error

// AsFaultError extracts the typed fault from an error chain, or nil
// when the error is not fault-related.
func AsFaultError(err error) *FaultError {
	if err == nil {
		return nil
	}
	return fault.From(err)
}

// FTConfig tunes Supervise's snapshot cadence and retry policy.
type FTConfig = core.FTConfig

// Supervise executes a distributed (MPI or Hybrid) run under fault
// supervision: periodic in-memory snapshots at link-rebuild
// boundaries, and on a detected fault a rollback to the last snapshot
// — after a rank kill, on a degraded layout spreading the dead rank's
// blocks over the P-1 survivors. Recovery is bit-exact with respect to
// an unfaulted run.
func Supervise(cfg Config, iters int, ft FTConfig) (*Result, error) {
	return core.Supervise(cfg, iters, ft)
}

// Experiment regenerates one of the paper's tables or figures.
type Experiment = bench.Experiment

// Report is a regenerated table or figure as labelled text.
type Report = bench.Report

// ExperimentOptions scales the experiment suite.
type ExperimentOptions = bench.Options

// Experiments lists every regenerable table and figure.
func Experiments() []Experiment { return bench.All }

// ExperimentByID resolves an experiment id such as "T1" or "F6".
func ExperimentByID(id string) (Experiment, error) { return bench.ByID(id) }
